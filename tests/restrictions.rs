//! The eight ES 2 limitations of the paper's §II, verified as enforced
//! behaviours of the stack — the reproduction's "the problem is real"
//! tests.

use gpes::gles2::{Context, GlError, PrimitiveMode, TexFormat, Wrap};
use gpes::glsl::{compile, ShaderKind};
use gpes::prelude::*;

/// Limitation 1: both stages must be programmed — a program cannot link
/// without a vertex shader, and the vertex shader must produce
/// `gl_Position`.
#[test]
fn limitation_1_both_stages_programmable() {
    let mut gl = Context::new(4, 4).expect("context");
    // An empty vertex shader compiles but never writes gl_Position;
    // drawing then fails (no fixed-function fallback exists).
    let err = compile(ShaderKind::Vertex, "").unwrap_err();
    assert!(err.message.contains("main"));
    let prog = gl
        .create_program(
            "void main() { gl_Position = vec4(0.0); }",
            "precision highp float; void main() { gl_FragColor = vec4(1.0); }",
        )
        .expect("minimal program links");
    gl.use_program(prog).expect("use");
}

/// Limitation 2: triangles only — there is no quad primitive to draw, so
/// GPGPU covers the screen with two triangles whose shared edge must be
/// rasterised exactly once.
#[test]
fn limitation_2_no_quads_two_triangles_cover_once() {
    let mut gl = Context::new(16, 16).expect("context");
    let prog = gl
        .create_program(
            "attribute vec2 a_pos; void main() { gl_Position = vec4(a_pos, 0.0, 1.0); }",
            "precision highp float; void main() { gl_FragColor = vec4(1.0); }",
        )
        .expect("program");
    gl.use_program(prog).expect("use");
    gl.set_attribute(
        "a_pos",
        2,
        &[
            -1.0, -1.0, 1.0, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0,
        ],
    )
    .expect("attrib");
    let stats = gl
        .draw_arrays(PrimitiveMode::Triangles, 0, 6)
        .expect("draw");
    assert_eq!(stats.fragments_shaded, 256, "every pixel exactly once");
    // The enum itself is the restriction: only triangle modes exist.
    let modes = [
        PrimitiveMode::Triangles,
        PrimitiveMode::TriangleStrip,
        PrimitiveMode::TriangleFan,
    ];
    assert_eq!(modes.len(), 3);
}

/// Limitations 3 & 4: no 1-D textures and only normalised coordinates —
/// the address translation must land on exact texel centres.
#[test]
fn limitations_3_4_linear_indexing_through_2d_normalised_coords() {
    let mut cc = ComputeContext::new(64, 64).expect("context");
    // A length that forces a non-trivial 2-D layout with a padded tail.
    let n = 1000usize;
    let v: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let arr = cc.upload(&v).expect("upload");
    assert!(arr.layout().width > 1 && arr.layout().height > 1);
    let k = Kernel::builder("gather_reverse")
        .input("x", &arr)
        .uniform_f32("n", n as f32)
        .output(ScalarType::F32, n)
        .body("return fetch_x(n - 1.0 - idx);")
        .build(&mut cc)
        .expect("build");
    let out = cc.run_f32(&k).expect("run");
    let expect: Vec<f32> = (0..n).rev().map(|i| i as f32).collect();
    assert_eq!(out, expect, "arbitrary gather across rows is exact");
}

/// Limitation 5: no float texture formats exist — the type system of the
/// simulator has no way to express one, so float data must go through the
/// §IV packing (which this asserts produces *byte* textures).
#[test]
fn limitation_5_only_byte_texture_formats() {
    let formats = [TexFormat::Rgba8, TexFormat::Rgb8, TexFormat::Luminance8];
    for f in formats {
        assert!(f.bytes_per_texel() <= 4);
    }
    // An f32 upload occupies exactly 4 bytes/element — RGBA8, not float32.
    let mut cc = ComputeContext::new(8, 8).expect("context");
    let arr = cc.upload(&[1.0f32, 2.0]).expect("upload");
    let info = cc.gl().texture_info(arr.texture()).expect("texture info");
    assert_eq!(info.0, TexFormat::Rgba8);
}

/// Limitation 6: the framebuffer clamps to [0,1] bytes — writing 2.0 or
/// -1.0 stores 255/0, so out-of-range kernel outputs need the pack path.
#[test]
fn limitation_6_framebuffer_clamps() {
    let mut gl = Context::new(2, 2).expect("context");
    let prog = gl
        .create_program(
            "attribute vec2 a_pos; void main() { gl_Position = vec4(a_pos, 0.0, 1.0); }",
            "precision highp float; void main() { gl_FragColor = vec4(2.0, -1.0, 0.5, 1.0); }",
        )
        .expect("program");
    gl.use_program(prog).expect("use");
    gl.set_attribute(
        "a_pos",
        2,
        &[
            -1.0, -1.0, 1.0, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0,
        ],
    )
    .expect("attrib");
    gl.draw_arrays(PrimitiveMode::Triangles, 0, 6)
        .expect("draw");
    let px = gl.read_pixels(0, 0, 1, 1).expect("read");
    assert_eq!(&px[..3], &[255, 0, 127]);
}

/// Limitation 7: no texture readback API — results reach the CPU only
/// through a framebuffer, and both of the paper's strategies agree.
#[test]
fn limitation_7_readback_only_through_framebuffer() {
    let mut cc = ComputeContext::new(32, 32).expect("context");
    let v: Vec<f32> = (0..64).map(|i| i as f32 * 1.5).collect();
    let arr = cc.upload(&v).expect("upload");
    let k = Kernel::builder("id")
        .input("x", &arr)
        .output(ScalarType::F32, v.len())
        .body("return fetch_x(idx);")
        .build(&mut cc)
        .expect("build");
    // Strategy A: final kernel ordered into the default framebuffer.
    let direct = cc.run_f32(&k).expect("run to screen");
    // Strategy B: render to texture + copy shader.
    let rtt: GpuArray<f32> = cc.run_to_array(&k).expect("rtt");
    let copied = cc
        .read_array(&rtt, Readback::CopyShader)
        .expect("copy shader read");
    // Strategy C (core ES2): read the FBO the texture is attached to.
    let fbo = cc.read_array(&rtt, Readback::DirectFbo).expect("fbo read");
    assert_eq!(direct, v);
    assert_eq!(copied, v);
    assert_eq!(fbo, v);
}

/// Limitation 8: a single fragment output — `gl_FragData[1]` is a compile
/// error and multi-output kernels split into one program per output.
#[test]
fn limitation_8_single_output_forces_splitting() {
    let err = compile(
        ShaderKind::Fragment,
        "precision highp float; void main() { gl_FragData[1] = vec4(1.0); }",
    )
    .unwrap_err();
    assert!(err.message.contains("out of bounds"));

    let mut cc = ComputeContext::new(16, 16).expect("context");
    let v = vec![3.0f32, -4.0];
    let arr = cc.upload(&v).expect("upload");
    let split = MultiOutputBuilder::new(Kernel::builder("pair").input("x", &arr))
        .output("abs", ScalarType::F32, 2, "return abs(fetch_x(idx));")
        .output("sign", ScalarType::F32, 2, "return sign(fetch_x(idx));")
        .build(&mut cc)
        .expect("split");
    assert_eq!(split.pass_count(), 2, "one shader per output");
    let abs = cc.run_f32(split.kernel("abs").expect("abs")).expect("run");
    let sig = cc
        .run_f32(split.kernel("sign").expect("sign"))
        .expect("run");
    assert_eq!(abs, vec![3.0, 4.0]);
    assert_eq!(sig, vec![1.0, -1.0]);
}

/// Bitwise operators are reserved in GLSL ES 1.00 — the reason §IV exists.
#[test]
fn bitwise_operators_are_rejected_by_the_shader_compiler() {
    for src in [
        "precision highp float; void main() { int x = 1 & 2; }",
        "precision highp float; void main() { int x = 1 << 4; }",
        "precision highp float; void main() { float x = mod(5, 2); }", // int args
    ] {
        assert!(compile(ShaderKind::Fragment, src).is_err(), "{src}");
    }
}

/// ES 2 NPOT rule: repeat-wrapped NPOT textures are incomplete and sample
/// black — the reason GPGPU arrays use clamp-to-edge.
#[test]
fn npot_textures_need_clamp_to_edge() {
    let mut gl = Context::new(4, 4).expect("context");
    let tex = gl.create_texture();
    gl.tex_image_2d(tex, TexFormat::Luminance8, 3, 3, &[200u8; 9])
        .expect("upload");
    gl.set_texture_wrap(tex, Wrap::Repeat, Wrap::Repeat)
        .expect("wrap");
    let prog = gl
        .create_program(
            "attribute vec2 a_pos; varying vec2 v_uv;\n\
             void main() { v_uv = a_pos * 0.5 + 0.5; gl_Position = vec4(a_pos, 0.0, 1.0); }",
            "precision highp float; varying vec2 v_uv; uniform sampler2D u_t;\n\
             void main() { gl_FragColor = texture2D(u_t, v_uv); }",
        )
        .expect("program");
    gl.use_program(prog).expect("use");
    gl.bind_texture(0, tex).expect("bind");
    gl.set_uniform("u_t", gpes::glsl::Value::Int(0))
        .expect("uniform");
    gl.set_attribute(
        "a_pos",
        2,
        &[
            -1.0, -1.0, 1.0, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0,
        ],
    )
    .expect("attrib");
    gl.draw_arrays(PrimitiveMode::Triangles, 0, 6)
        .expect("draw");
    let px = gl.read_pixels(0, 0, 1, 1).expect("read");
    assert_eq!(&px[..3], &[0, 0, 0], "incomplete texture samples black");

    // Fixing the wrap mode makes it complete.
    gl.set_texture_wrap(tex, Wrap::ClampToEdge, Wrap::ClampToEdge)
        .expect("wrap");
    gl.draw_arrays(PrimitiveMode::Triangles, 0, 6)
        .expect("draw");
    let px = gl.read_pixels(0, 0, 1, 1).expect("read");
    assert_eq!(px[0], 200);
}

/// Sampler feedback loops (render target bound for sampling) are
/// rejected — the reason multi-pass chains ping-pong between textures.
#[test]
fn feedback_loops_are_rejected() {
    let mut gl = Context::new(4, 4).expect("context");
    let tex = gl.create_texture();
    gl.tex_storage(tex, TexFormat::Rgba8, 4, 4)
        .expect("storage");
    let fbo = gl.create_framebuffer();
    gl.framebuffer_texture(fbo, tex).expect("attach");
    gl.bind_framebuffer(Some(fbo)).expect("bind fb");
    gl.bind_texture(0, tex).expect("bind tex");
    let prog = gl
        .create_program(
            "attribute vec2 a_pos; void main() { gl_Position = vec4(a_pos, 0.0, 1.0); }",
            "precision highp float; uniform sampler2D u_t;\n\
             void main() { gl_FragColor = texture2D(u_t, vec2(0.5)); }",
        )
        .expect("program");
    gl.use_program(prog).expect("use");
    gl.set_uniform("u_t", gpes::glsl::Value::Int(0))
        .expect("uniform");
    gl.set_attribute("a_pos", 2, &[-1.0, -1.0, 3.0, -1.0, -1.0, 3.0])
        .expect("attrib");
    let err = gl.draw_arrays(PrimitiveMode::Triangles, 0, 3).unwrap_err();
    assert!(matches!(err, GlError::InvalidOperation { .. }));
}
