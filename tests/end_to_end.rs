//! Full-stack integration tests: host data → codec → texture → GLSL
//! compiler → interpreter → rasteriser → framebuffer → codec → host data,
//! for every numeric format of §IV.

use gpes::kernels::data;
use gpes::prelude::*;

#[test]
fn every_scalar_type_round_trips_through_a_kernel() {
    let mut cc = ComputeContext::new(64, 64).expect("context");

    // f32 — identity plus arithmetic.
    let f = data::random_f32(500, 1, 1.0e9);
    let gf = cc.upload(&f).expect("upload f32");
    let k = Kernel::builder("f32x2")
        .input("x", &gf)
        .output(ScalarType::F32, f.len())
        .body("return fetch_x(idx) * 2.0;")
        .build(&mut cc)
        .expect("build");
    let out = cc.run_f32(&k).expect("run");
    let expect: Vec<f32> = f.iter().map(|&v| v * 2.0).collect();
    assert_eq!(out, expect);

    // u32 within the 24-bit-exact window.
    let u = data::random_u32(500, 2, 1 << 23);
    let gu = cc.upload(&u).expect("upload u32");
    let k = Kernel::builder("u32inc")
        .input("x", &gu)
        .output(ScalarType::U32, u.len())
        .body("return fetch_x(idx) + 1.0;")
        .build(&mut cc)
        .expect("build");
    let out: Vec<u32> = cc.run_and_read(&k).expect("run");
    let expect: Vec<u32> = u.iter().map(|&v| v + 1).collect();
    assert_eq!(out, expect);

    // i32 crossing zero.
    let i = data::random_i32(500, 3, 1 << 22);
    let gi = cc.upload(&i).expect("upload i32");
    let k = Kernel::builder("i32neg")
        .input("x", &gi)
        .output(ScalarType::I32, i.len())
        .body("return -fetch_x(idx);")
        .build(&mut cc)
        .expect("build");
    let out: Vec<i32> = cc.run_and_read(&k).expect("run");
    let expect: Vec<i32> = i.iter().map(|&v| -v).collect();
    assert_eq!(out, expect);

    // u8 saturating-style arithmetic.
    let b = data::random_u8(500, 4, 200);
    let gb = cc.upload(&b).expect("upload u8");
    let k = Kernel::builder("u8half")
        .input("x", &gb)
        .output(ScalarType::U8, b.len())
        .body("return floor(fetch_x(idx) * 0.5);")
        .build(&mut cc)
        .expect("build");
    let out: Vec<u8> = cc.run_and_read(&k).expect("run");
    let expect: Vec<u8> = b.iter().map(|&v| v / 2).collect();
    assert_eq!(out, expect);

    // i8 sign handling.
    let s: Vec<i8> = (-128..=127).collect();
    let gs = cc.upload(&s).expect("upload i8");
    let k = Kernel::builder("i8id")
        .input("x", &gs)
        .output(ScalarType::I8, s.len())
        .body("return fetch_x(idx);")
        .build(&mut cc)
        .expect("build");
    let out: Vec<i8> = cc.run_and_read(&k).expect("run");
    assert_eq!(out, s);
}

#[test]
fn float_specials_survive_the_full_stack() {
    let mut cc = ComputeContext::new(16, 16).expect("context");
    let values = vec![
        f32::INFINITY,
        f32::NEG_INFINITY,
        0.0,
        -0.0,
        1.0e-40, // subnormal
        f32::NAN,
        1.5,
    ];
    let arr = cc.upload(&values).expect("upload");
    let k = Kernel::builder("specials")
        .input("x", &arr)
        .output(ScalarType::F32, values.len())
        .body("return fetch_x(idx);")
        .build(&mut cc)
        .expect("build");
    let out = cc.run_f32(&k).expect("run");
    assert_eq!(out[0], f32::INFINITY);
    assert_eq!(out[1], f32::NEG_INFINITY);
    assert_eq!(out[2].to_bits(), 0.0f32.to_bits());
    assert_eq!(out[3].to_bits(), (-0.0f32).to_bits());
    assert_eq!(out[4], 1.0e-40);
    assert!(out[5].is_nan());
    assert_eq!(out[6], 1.5);
}

#[test]
fn multipass_chain_preserves_exactness() {
    // Four chained passes of integer arithmetic must stay exact.
    let mut cc = ComputeContext::new(32, 32).expect("context");
    let v = data::random_i32(300, 5, 1 << 18);
    let mut current = cc.upload(&v).expect("upload");
    for step in 0..4 {
        let k = Kernel::builder(format!("chain{step}"))
            .input("x", &current)
            .output(ScalarType::I32, v.len())
            .body("return fetch_x(idx) * 2.0 + 1.0;")
            .build(&mut cc)
            .expect("build");
        current = cc.run_to_array(&k).expect("run");
    }
    let out = cc.read_array(&current, Readback::DirectFbo).expect("read");
    let expect: Vec<i32> = v
        .iter()
        .map(|&x| ((x * 2 + 1) * 2 + 1) * 2 * 2 + 2 + 1)
        .collect();
    // f(x) = 2x+1 applied four times: 16x + 15.
    let expect2: Vec<i32> = v.iter().map(|&x| 16 * x + 15).collect();
    assert_eq!(expect, expect2, "closed form check");
    assert_eq!(out, expect2);
}

#[test]
fn two_kernels_can_share_inputs() {
    let mut cc = ComputeContext::new(32, 32).expect("context");
    let v = data::random_f32(100, 6, 50.0);
    let arr = cc.upload(&v).expect("upload");
    let double = Kernel::builder("double")
        .input("x", &arr)
        .output(ScalarType::F32, v.len())
        .body("return fetch_x(idx) * 2.0;")
        .build(&mut cc)
        .expect("build");
    let square = Kernel::builder("square")
        .input("x", &arr)
        .output(ScalarType::F32, v.len())
        .body("float v = fetch_x(idx); return v * v;")
        .build(&mut cc)
        .expect("build");
    let d = cc.run_f32(&double).expect("run double");
    let s = cc.run_f32(&square).expect("run square");
    for ((&x, &dd), &ss) in v.iter().zip(&d).zip(&s) {
        assert_eq!(dd, x * 2.0);
        assert_eq!(ss, x * x);
    }
}

#[test]
fn user_functions_in_kernel_bodies() {
    let mut cc = ComputeContext::new(16, 16).expect("context");
    let v = vec![1.0f32, 4.0, 9.0, 16.0];
    let arr = cc.upload(&v).expect("upload");
    let k = Kernel::builder("helper_fn")
        .input("x", &arr)
        .functions(
            "float plus_one(float v) { return v + 1.0; }\n\
             float twice(float v) { return v * 2.0; }",
        )
        .output(ScalarType::F32, v.len())
        .body("return twice(plus_one(fetch_x(idx)));")
        .build(&mut cc)
        .expect("build");
    assert_eq!(cc.run_f32(&k).expect("run"), vec![4.0, 10.0, 20.0, 34.0]);
}

#[test]
fn gl_frag_coord_grid_addressing() {
    // 2-D kernels address output cells through row/col (gl_FragCoord).
    let mut cc = ComputeContext::new(16, 16).expect("context");
    let v = vec![0.0f32; 1]; // dummy input
    let arr = cc.upload(&v).expect("upload");
    let k = Kernel::builder("coords")
        .input("x", &arr)
        .output_grid(ScalarType::F32, 4, 5)
        .body("return row * 10.0 + col;")
        .build(&mut cc)
        .expect("build");
    let out = cc.run_f32(&k).expect("run");
    for r in 0..4usize {
        for c in 0..5usize {
            assert_eq!(out[r * 5 + c], (r * 10 + c) as f32);
        }
    }
}
