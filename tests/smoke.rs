//! Tier-0 smoke canary: the smallest possible end-to-end run through the
//! whole stack (GLSL compile → ES 2 draw → codec round trip). If this
//! fails, everything else is noise — look here first.

use gpes::prelude::*;

#[test]
fn smoke_4x4_context_runs_one_kernel() {
    let mut cc = ComputeContext::new(4, 4).expect("4x4 context");
    let a = cc.upload(&[1.0f32, 2.0, 3.0, 4.0]).expect("upload a");
    let b = cc.upload(&[0.5f32, 1.5, 2.5, 3.5]).expect("upload b");
    let kernel = Kernel::builder("smoke_add")
        .input("a", &a)
        .input("b", &b)
        .output(ScalarType::F32, 4)
        .body("return fetch_a(idx) + fetch_b(idx);")
        .build(&mut cc)
        .expect("build kernel");
    let out = cc.run_f32(&kernel).expect("run kernel");
    assert_eq!(out, vec![1.5, 3.5, 5.5, 7.5]);
}
