//! Stress test for the bounded serving front-end: several producer
//! threads hammer a 2-worker engine with a queue capacity of 4, mixing
//! `submit`/`try_submit`/`submit_batch`/`submit_pipeline`, expired
//! deadlines, and immediate cancellations. The contract under test is
//! the outcome partition — every submission ends in exactly one of
//! {result, `QueueFull`, `DeadlineExceeded`, `Cancelled`, shutdown
//! error} — and that the process never deadlocks: every wait below is
//! bounded, and the snapshot's balance identity holds at quiescence.
//!
//! Runs under both `GPES_TEST_DISPATCH=serial` and `=auto` in CI (the
//! engine honours the env override for its workers' dispatch).

use gpes::core::serve::StepInput;
use gpes::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn gain_spec(n: usize) -> Arc<KernelSpec> {
    Arc::new(
        KernelSpec::new("gain")
            .input("x")
            .uniform_f32("gain", 3.0)
            .output(n)
            .body("return fetch_x(idx) * gain;"),
    )
}

fn sum_pipeline(n: usize) -> Arc<PipelineSpec> {
    let step = Arc::new(
        KernelSpec::new("inc")
            .input("x")
            .output(n)
            .body("return fetch_x(idx) + 1.0;"),
    );
    Arc::new(
        PipelineSpec::builder("inc4")
            .source_len("x", n)
            .pass(PassSpec::new(&step).read("x", "x").write_len("x", n))
            .iterations(4)
            .build()
            .expect("spec"),
    )
}

/// Per-producer tally of how each submission resolved. `other` must stay
/// zero: it would mean an outcome outside the documented partition.
#[derive(Default, Debug)]
struct Outcomes {
    submitted: u64,
    ok: u64,
    queue_full: u64,
    deadline: u64,
    cancelled: u64,
    shutdown: u64,
    other: u64,
}

impl Outcomes {
    fn absorb_error(&mut self, e: &ComputeError) {
        match e {
            ComputeError::QueueFull { .. } => self.queue_full += 1,
            ComputeError::DeadlineExceeded { .. } => self.deadline += 1,
            ComputeError::Cancelled => self.cancelled += 1,
            ComputeError::EngineShutdown | ComputeError::EngineInternal { .. } => {
                self.shutdown += 1
            }
            _ => self.other += 1,
        }
    }

    fn total(&self) -> u64 {
        self.ok + self.queue_full + self.deadline + self.cancelled + self.shutdown + self.other
    }
}

/// Bounded wait: a handle that does not resolve within the cap is a
/// deadlock, which is exactly what this test exists to catch.
fn bounded_wait<T>(handle: &gpes::core::JobHandle<T>) -> Result<T, ComputeError> {
    handle
        .wait_timeout(Duration::from_secs(120))
        .expect("a submitted job must resolve: wait() hung")
}

#[test]
fn saturating_mixed_load_partitions_every_outcome_and_never_deadlocks() {
    const PRODUCERS: usize = 3;
    const PER_PRODUCER: usize = 40;
    let n = 64;
    let engine = Engine::builder()
        .workers(2)
        .queue_capacity(4)
        .submit_timeout(Duration::from_millis(50))
        .build()
        .expect("engine");
    let gain = gain_spec(n);
    let pipe = sum_pipeline(n);
    let input: Arc<Vec<f32>> = Arc::new((0..n).map(|i| i as f32).collect());
    let expected_gain: Vec<f32> = input.iter().map(|v| v * 3.0).collect();
    let expected_pipe: Vec<f32> = input.iter().map(|v| v + 4.0).collect();

    let totals: Vec<Outcomes> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for p in 0..PRODUCERS {
            let engine = &engine;
            let gain = &gain;
            let pipe = &pipe;
            let input = &input;
            let expected_gain = &expected_gain;
            let expected_pipe = &expected_pipe;
            joins.push(scope.spawn(move || {
                let mut tally = Outcomes::default();
                for i in 0..PER_PRODUCER {
                    tally.submitted += 1;
                    match (p + i) % 5 {
                        // Blocking submit with a short admission timeout:
                        // lands or resolves QueueFull, never blocks forever.
                        0 => match engine.submit(Job::new(gain).data(input.to_vec())) {
                            Ok(h) => match bounded_wait(&h) {
                                Ok(data) => {
                                    assert_eq!(&data, expected_gain);
                                    tally.ok += 1;
                                }
                                Err(e) => tally.absorb_error(&e),
                            },
                            Err(e) => tally.absorb_error(&e),
                        },
                        // Non-blocking submit.
                        1 => match engine.try_submit(Job::new(gain).data(input.to_vec())) {
                            Ok(h) => match bounded_wait(&h) {
                                Ok(data) => {
                                    assert_eq!(&data, expected_gain);
                                    tally.ok += 1;
                                }
                                Err(e) => tally.absorb_error(&e),
                            },
                            Err(e) => tally.absorb_error(&e),
                        },
                        // Multi-step DAG.
                        2 => {
                            let mut sub = Submission::new();
                            let s =
                                sub.step(gain, vec![StepInput::Data(Arc::clone(input))], vec![]);
                            sub.read(s);
                            match engine.try_submit_batch(sub) {
                                Ok(h) => match bounded_wait(&h) {
                                    Ok(batch) => {
                                        assert_eq!(batch.output(s).expect("step"), expected_gain);
                                        tally.ok += 1;
                                    }
                                    Err(e) => tally.absorb_error(&e),
                                },
                                Err(e) => tally.absorb_error(&e),
                            }
                        }
                        // Retained pipeline, every third with an expired
                        // deadline (guaranteed shed if admitted).
                        3 => {
                            let mut job = PipelineJob::new(pipe).source(input.to_vec()).read("x");
                            if i % 3 == 0 {
                                job = job.deadline(Instant::now() - Duration::from_millis(1));
                            }
                            match engine.try_submit_pipeline(job) {
                                Ok(h) => match bounded_wait(&h) {
                                    Ok(out) => {
                                        assert_eq!(
                                            out.output("x").expect("x"),
                                            expected_pipe.as_slice()
                                        );
                                        tally.ok += 1;
                                    }
                                    Err(e) => tally.absorb_error(&e),
                                },
                                Err(e) => tally.absorb_error(&e),
                            }
                        }
                        // Submit then immediately cancel: either the
                        // cancel wins (Cancelled) or the job runs (Ok).
                        _ => match engine.try_submit(Job::new(gain).data(input.to_vec())) {
                            Ok(h) => {
                                let won = h.cancel();
                                match bounded_wait(&h) {
                                    Ok(data) => {
                                        assert!(!won, "cancel() winning implies Cancelled");
                                        assert_eq!(&data, expected_gain);
                                        tally.ok += 1;
                                    }
                                    Err(e) => {
                                        if won {
                                            assert!(
                                                matches!(e, ComputeError::Cancelled),
                                                "cancel() won but job resolved {e:?}"
                                            );
                                        }
                                        tally.absorb_error(&e);
                                    }
                                }
                            }
                            Err(e) => tally.absorb_error(&e),
                        },
                    }
                }
                tally
            }));
        }
        joins
            .into_iter()
            .map(|j| j.join().expect("producer"))
            .collect()
    });

    let mut grand = Outcomes::default();
    for t in totals {
        grand.submitted += t.submitted;
        grand.ok += t.ok;
        grand.queue_full += t.queue_full;
        grand.deadline += t.deadline;
        grand.cancelled += t.cancelled;
        grand.shutdown += t.shutdown;
        grand.other += t.other;
    }
    assert_eq!(grand.submitted, (PRODUCERS * PER_PRODUCER) as u64);
    assert_eq!(
        grand.total(),
        grand.submitted,
        "every submission resolves exactly once: {grand:?}"
    );
    assert_eq!(grand.other, 0, "outcome outside the partition: {grand:?}");
    assert_eq!(grand.shutdown, 0, "no shutdown errors before shutdown");
    assert!(grand.ok > 0, "a saturating load must still serve work");

    // Quiescent now — every handle resolved. Cancelled payloads are
    // discarded lazily at dequeue, so give the (idle) workers a moment
    // to pop any stale entry before asserting emptiness.
    let give_up = Instant::now() + Duration::from_secs(30);
    while engine.queue_depth() > 0 {
        assert!(Instant::now() < give_up, "queue never drained");
        std::thread::sleep(Duration::from_millis(1));
    }
    let snap = engine.snapshot();
    assert!(snap.counters_balanced(), "unbalanced snapshot: {snap:?}");
    assert_eq!(snap.submitted, grand.submitted);
    assert_eq!(snap.rejected, grand.queue_full);
    assert_eq!(snap.shed, grand.deadline);
    assert_eq!(snap.cancelled, grand.cancelled);
    assert_eq!(
        snap.completed, grand.ok,
        "completed == observed Ok results: {snap:?} vs {grand:?}"
    );
    assert_eq!(snap.failed, 0, "no job may fail: {snap:?} vs {grand:?}");
    assert!(snap.queue_capacity == 4 && snap.queue_depth_high_water <= 4);
    assert_eq!(snap.queue_depth, 0);

    // Shutdown with freshly queued work: every late handle resolves to
    // a result or the typed shutdown error — still no hangs.
    let late: Vec<_> = (0..8)
        .map(|_| engine.try_submit(Job::new(&gain).data(input.to_vec())))
        .collect();
    engine.shutdown();
    for submitted in late {
        match submitted {
            Ok(h) => match bounded_wait(&h) {
                Ok(data) => assert_eq!(&data, &expected_gain),
                Err(
                    ComputeError::EngineShutdown
                    | ComputeError::EngineInternal { .. }
                    | ComputeError::QueueFull { .. },
                ) => {}
                Err(other) => panic!("unexpected late outcome: {other:?}"),
            },
            Err(ComputeError::QueueFull { .. }) => {}
            Err(other) => panic!("unexpected admission error: {other:?}"),
        }
    }
}
