//! Cross-crate integration tests for the framework extensions beyond the
//! paper's §V evaluation: short codecs, the Strzodka'02 baseline, the
//! fp16 extension path, vertex-stage compute, the GLSL preprocessor,
//! Appendix A strict mode and chunked execution.

use gpes::core::codec::strzodka16;
use gpes::core::{chunked, vertex_compute::VertexKernel};
use gpes::kernels::data;
use gpes::prelude::*;

#[test]
fn short_codecs_full_stack_with_mixed_types() {
    // u16 inputs, i32 output: codecs compose freely inside one kernel.
    let mut cc = ComputeContext::new(32, 32).expect("context");
    let a: Vec<u16> = (0..50).map(|i| i * 1000).collect();
    let b: Vec<u16> = (0..50).map(|i| 65535 - i * 500).collect();
    let ga = cc.upload(&a).expect("a");
    let gb = cc.upload(&b).expect("b");
    let k = Kernel::builder("diff16")
        .input("a", &ga)
        .input("b", &gb)
        .output(ScalarType::I32, a.len())
        .body("return fetch_a(idx) - fetch_b(idx);")
        .build(&mut cc)
        .expect("build");
    let out: Vec<i32> = cc.run_and_read(&k).expect("run");
    let expect: Vec<i32> = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| x as i32 - y as i32)
        .collect();
    assert_eq!(out, expect);
}

#[test]
fn i16_negatives_through_luminance_alpha_textures() {
    let mut cc = ComputeContext::new(16, 16).expect("context");
    let v: Vec<i16> = vec![-32768, -1, 0, 1, 32767, -12345, 31415];
    let gv = cc.upload(&v).expect("upload");
    let k = Kernel::builder("halve")
        .input("v", &gv)
        .output(ScalarType::I16, v.len())
        .body("float x = fetch_v(idx); return x - floor(x / 2.0);") // x - floor(x/2) = ceil(x/2)
        .build(&mut cc)
        .expect("build");
    let out: Vec<i16> = cc.run_and_read(&k).expect("run");
    let expect: Vec<i16> = v
        .iter()
        .map(|&x| x - (x as f32 / 2.0).floor() as i16)
        .collect();
    assert_eq!(out, expect);
}

#[test]
fn strzodka_virtual16_subtract_and_scale_on_gpu() {
    let mut cc = ComputeContext::new(64, 64).expect("context");
    let a: Vec<u16> = (0..200).map(|i| (i * 331) as u16).collect();
    let b: Vec<u16> = (0..200).map(|i| (i * 77 + 13) as u16).collect();
    let texels = a.len().div_ceil(2);
    let side = (texels as f64).sqrt().ceil() as u32;
    let texel_count = side as usize * side as usize;
    let ta = cc
        .upload_texels(side, side, &strzodka16::encode_texels(&a, texel_count))
        .expect("ta");
    let tb = cc
        .upload_texels(side, side, &strzodka16::encode_texels(&b, texel_count))
        .expect("tb");
    // (3a − b) in the virtual-16 format, both lanes of every texel.
    let k = Kernel::builder("v16_3a_minus_b")
        .input_texels("a", &ta)
        .input_texels("b", &tb)
        .functions(strzodka16::GLSL)
        .output_texels(texel_count)
        .body(
            "vec4 ta = fetch_a_texel(idx);\n\
             vec4 tb = fetch_b_texel(idx);\n\
             vec2 r0 = gpes_v16_sub(gpes_v16_scale(gpes_v16_from_bytes(ta.xy), 3.0),\n\
                                    gpes_v16_from_bytes(tb.xy));\n\
             vec2 r1 = gpes_v16_sub(gpes_v16_scale(gpes_v16_from_bytes(ta.zw), 3.0),\n\
                                    gpes_v16_from_bytes(tb.zw));\n\
             return vec4(gpes_v16_pack(r0), gpes_v16_pack(r1));",
        )
        .build(&mut cc)
        .expect("build");
    let bytes = cc.run_and_read_texels(&k).expect("run");
    let out = strzodka16::decode_texels(&bytes, a.len());
    let expect: Vec<u16> = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| x.wrapping_mul(3).wrapping_sub(y))
        .collect();
    assert_eq!(out, expect);
}

#[test]
fn preprocessor_macros_inside_kernel_bodies() {
    let mut cc = ComputeContext::new(16, 16).expect("context");
    let x = cc.upload(&[1.0f32, 2.0, 3.0]).expect("x");
    // #define travels through .functions() into the generated shader.
    let k = Kernel::builder("macro_scale")
        .input("x", &x)
        .functions("#define GAIN 2.5\n#define SQ(v) ((v) * (v))\n")
        .output(ScalarType::F32, 3)
        .body("return SQ(fetch_x(idx)) * GAIN;")
        .build(&mut cc)
        .expect("build");
    let out = cc.run_f32(&k).expect("run");
    assert_eq!(out, vec![2.5, 10.0, 22.5]);
}

#[test]
fn strict_driver_gates_kernel_loops() {
    let mut cc = ComputeContext::new(16, 16).expect("context");
    cc.gl().set_strict_shaders(true);
    let x = cc.upload(&[1.0f32; 8]).expect("x");
    // Constant-bound loop: fine under Appendix A.
    let ok = Kernel::builder("const_loop")
        .input("x", &x)
        .output(ScalarType::F32, 8)
        .body(
            "float acc = 0.0;\n\
             for (float i = 0.0; i < 8.0; i += 1.0) { acc += fetch_x(i); }\n\
             return acc;",
        )
        .build(&mut cc);
    assert!(ok.is_ok(), "{:?}", ok.err());
    // Uniform-bound loop: rejected by the minimum-profile driver.
    let err = Kernel::builder("dyn_loop")
        .input("x", &x)
        .uniform_f32("n", 8.0)
        .output(ScalarType::F32, 8)
        .body(
            "float acc = 0.0;\n\
             for (float i = 0.0; i < n; i += 1.0) { acc += fetch_x(i); }\n\
             return acc;",
        )
        .build(&mut cc)
        .unwrap_err();
    assert!(err.to_string().contains("appendix A"), "{err}");
}

#[test]
fn every_framework_kernel_is_appendix_a_conformant() {
    // The paper's framework must run on minimum-profile drivers: every
    // kernel the repository ships (including the generated codec library
    // and fetch helpers) has to survive the strict Appendix A pass.
    let mut cc = ComputeContext::new(64, 64).expect("context");
    cc.gl().set_strict_shaders(true);

    let a = cc.upload(&data::random_f32(64, 621, 10.0)).expect("a");
    let b = cc.upload(&data::random_f32(64, 622, 10.0)).expect("b");
    gpes::kernels::sum::build_f32(&mut cc, &a, &b).expect("sum under strict driver");
    gpes::kernels::saxpy::build(&mut cc, &a, &b, 2.0).expect("saxpy under strict driver");

    let ma = cc
        .upload_matrix(8, 8, &data::random_f32(64, 623, 1.0))
        .expect("ma");
    let mb = cc
        .upload_matrix(8, 8, &data::random_f32(64, 624, 1.0))
        .expect("mb");
    let mc = cc
        .upload_matrix(8, 8, &data::random_f32(64, 625, 1.0))
        .expect("mc");
    gpes::kernels::sgemm::build_f32(&mut cc, &ma, &mb, &mc, 1.5, 0.5)
        .expect("sgemm under strict driver (K is baked as a constant)");

    let img = cc
        .upload_matrix(8, 8, &data::random_u8(64, 626, 255))
        .expect("img");
    gpes::kernels::conv3x3::build(
        &mut cc,
        &img,
        &gpes::kernels::conv3x3::Filter3x3::box_blur(),
    )
    .expect("conv3x3 under strict driver");

    let pts = cc
        .upload_matrix(16, 2, &data::random_f32(32, 627, 10.0))
        .expect("pts");
    let cen = cc
        .upload_matrix(4, 2, &data::random_f32(8, 628, 10.0))
        .expect("cen");
    gpes::kernels::kmeans::build_assign(&mut cc, &pts, &cen)
        .expect("kmeans under strict driver (constant K loop)");

    let bias = cc.upload(&data::random_f32(4, 629, 0.1)).expect("bias");
    let w = cc
        .upload_matrix(64, 4, &data::random_f32(256, 630, 0.2))
        .expect("w");
    gpes::kernels::backprop::build_layer(
        &mut cc,
        &a,
        &w,
        &bias,
        gpes::kernels::backprop::Activation::Sigmoid,
    )
    .expect("backprop under strict driver (constant in_dim loop)");

    // End to end, not just compile: the whole FFT chain under the
    // strict driver.
    let re = data::random_f32(16, 631, 1.0);
    let im = data::random_f32(16, 632, 1.0);
    let (gre, gim) =
        gpes::kernels::fft::run_gpu(&mut cc, &re, &im, gpes::kernels::fft::Direction::Forward)
            .expect("fft under strict driver");
    let (cre, cim) =
        gpes::kernels::fft::cpu_reference(&re, &im, gpes::kernels::fft::Direction::Forward);
    assert_eq!((gre, gim), (cre, cim));
}

#[test]
fn vertex_and_fragment_stages_agree_on_integers() {
    let mut cc = ComputeContext::new(32, 32).expect("context");
    let x: Vec<f32> = (0..40).map(|i| i as f32).collect();
    let vk = VertexKernel::builder("affine_v")
        .input("x", &x)
        .output(ScalarType::U32, x.len())
        .body("return x * 1000.0 + 7.0;")
        .build(&mut cc)
        .expect("vertex build");
    let via_vertex: Vec<u32> = vk.run_and_read(&mut cc).expect("vertex run");

    let gx = cc.upload(&x).expect("x");
    let fk = Kernel::builder("affine_f")
        .input("x", &gx)
        .output(ScalarType::U32, x.len())
        .body("return fetch_x(idx) * 1000.0 + 7.0;")
        .build(&mut cc)
        .expect("fragment build");
    let via_fragment: Vec<u32> = cc.run_and_read(&fk).expect("fragment run");
    assert_eq!(via_vertex, via_fragment);
    assert_eq!(via_vertex[3], 3007);
}

#[test]
fn chunked_execution_handles_device_limits() {
    // A "phone-class" context: 16x16 surface, 16-texel texture cap.
    let mut cc = ComputeContext::with_limits(
        16,
        16,
        gpes::gles2::Limits {
            max_texture_size: 16,
            ..gpes::gles2::Limits::default()
        },
    )
    .expect("context");
    let n = 2000usize;
    let a = data::random_f32(n, 611, 100.0);
    let b = data::random_f32(n, 612, 100.0);
    let out = chunked::run_chunked2(&mut cc, &a, &b, |cc, ga, gb, _| {
        gpes::kernels::sum::build_f32(cc, ga, gb)
    })
    .expect("chunked");
    let expect = gpes::kernels::sum::cpu_reference(&a, &b);
    assert_eq!(out, expect);
    assert_eq!(cc.pass_log().len(), n.div_ceil(256));
}

#[test]
fn fp16_extension_remains_opt_in_at_the_compute_layer() {
    // The compute layer never enables the extension on its own: a fresh
    // context exposes a pure core-ES2 device.
    let mut cc = ComputeContext::new(16, 16).expect("context");
    assert!(cc.gl().extension_strings().is_empty());
    let tex = cc.gl().create_texture();
    let err = cc
        .gl()
        .tex_storage(tex, gpes::gles2::TexFormat::RgbaF16, 2, 2)
        .unwrap_err();
    assert!(err.to_string().contains("OES_texture_half_float"));
}

#[test]
fn shader_extension_directive_round_trip() {
    // #extension on a supported name compiles; require on unknown fails.
    let src = "#extension GL_OES_texture_half_float : enable\n\
               precision highp float;\nvoid main() { gl_FragColor = vec4(1.0); }";
    gpes::glsl::compile(gpes::glsl::ShaderKind::Fragment, src).expect("enable compiles");
    let bad = "#extension GL_TOTALLY_FAKE : require\n\
               precision highp float;\nvoid main() { gl_FragColor = vec4(1.0); }";
    let err = gpes::glsl::compile(gpes::glsl::ShaderKind::Fragment, bad).unwrap_err();
    assert!(err.message.contains("not supported"));
}

#[test]
fn rodinia_kernels_compose_with_chunking_and_models() {
    // pathfinder at a size that fits, gaussian at a small size, both
    // validated — then their CPU workload models produce positive times.
    let mut cc = ComputeContext::new(64, 64).expect("context");
    let (rows, cols) = (5usize, 40usize);
    let wall: Vec<f32> = data::random_f32(rows * cols, 613, 5.0)
        .into_iter()
        .map(f32::abs)
        .collect();
    let gpu = gpes::kernels::pathfinder::run_gpu(&mut cc, rows, cols, &wall).expect("run");
    assert_eq!(
        gpu,
        gpes::kernels::pathfinder::cpu_reference(rows, cols, &wall)
    );

    let cpu_model = gpes::perf::Arm11Cpu::raspberry_pi1_baseline();
    for workload in [
        gpes::kernels::pathfinder::cpu_workload(100, 100),
        gpes::kernels::srad::cpu_workload(64, 64),
        gpes::kernels::kmeans::cpu_workload(1000, 8),
        gpes::kernels::gaussian::cpu_workload(64),
        gpes::kernels::backprop::cpu_workload(64, 32),
        gpes::kernels::fft::cpu_workload(1024),
    ] {
        assert!(cpu_model.time(&workload) > 0.0);
    }
}
