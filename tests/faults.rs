//! Failure injection across the stack: every error path a real GLES2
//! app can hit must surface as a typed error, never a wrong answer or a
//! panic.

use gpes::gles2::{Context, GlError, PrimitiveMode, TexFormat};
use gpes::glsl::exec::ExecLimits;
use gpes::prelude::*;

const VS: &str = "attribute vec2 a_pos;\nvoid main() { gl_Position = vec4(a_pos, 0.0, 1.0); }";
const FS: &str = "precision highp float;\nvoid main() { gl_FragColor = vec4(1.0); }";
const QUAD: [f32; 12] = [
    -1.0, -1.0, 1.0, -1.0, 1.0, 1.0, //
    -1.0, -1.0, 1.0, 1.0, -1.0, 1.0,
];

#[test]
fn draw_without_program_or_attributes() {
    let mut gl = Context::new(4, 4).expect("context");
    let err = gl.draw_arrays(PrimitiveMode::Triangles, 0, 3).unwrap_err();
    assert!(matches!(err, GlError::InvalidOperation { .. }));

    let prog = gl.create_program(VS, FS).expect("program");
    gl.use_program(prog).expect("use");
    // No a_pos array bound.
    let err = gl.draw_arrays(PrimitiveMode::Triangles, 0, 3).unwrap_err();
    assert!(err.to_string().contains("a_pos"), "{err}");
}

#[test]
fn bad_draw_counts() {
    let mut gl = Context::new(4, 4).expect("context");
    let prog = gl.create_program(VS, FS).expect("program");
    gl.use_program(prog).expect("use");
    gl.set_attribute("a_pos", 2, &QUAD).expect("attrib");
    let err = gl.draw_arrays(PrimitiveMode::Triangles, 0, 4).unwrap_err();
    assert!(err.to_string().contains("multiple of 3"));
    let err = gl
        .draw_arrays(PrimitiveMode::TriangleStrip, 0, 2)
        .unwrap_err();
    assert!(matches!(err, GlError::InvalidValue { .. }));
    // Attribute array shorter than the draw range.
    let err = gl.draw_arrays(PrimitiveMode::Triangles, 3, 6).unwrap_err();
    assert!(err.to_string().contains("too short"));
}

#[test]
fn deleted_and_stale_objects() {
    let mut gl = Context::new(4, 4).expect("context");
    let tex = gl.create_texture();
    gl.delete_texture(tex);
    let err = gl
        .tex_image_2d(tex, TexFormat::Rgba8, 1, 1, &[0, 0, 0, 0])
        .unwrap_err();
    assert!(matches!(
        err,
        GlError::NoSuchObject {
            kind: "texture",
            ..
        }
    ));
    let fb = gl.create_framebuffer();
    let err = gl.framebuffer_texture(fb, tex).unwrap_err();
    assert!(matches!(err, GlError::NoSuchObject { .. }));
}

#[test]
fn incomplete_fbo_blocks_draws_and_reads() {
    let mut gl = Context::new(4, 4).expect("context");
    let prog = gl.create_program(VS, FS).expect("program");
    gl.use_program(prog).expect("use");
    gl.set_attribute("a_pos", 2, &QUAD).expect("attrib");
    let fbo = gl.create_framebuffer();
    gl.bind_framebuffer(Some(fbo)).expect("bind");
    let err = gl.draw_arrays(PrimitiveMode::Triangles, 0, 6).unwrap_err();
    assert!(matches!(err, GlError::InvalidFramebufferOperation { .. }));
    let err = gl.read_pixels(0, 0, 1, 1).unwrap_err();
    assert!(matches!(err, GlError::InvalidFramebufferOperation { .. }));
    // Attaching storage-less texture is still incomplete.
    let tex = gl.create_texture();
    gl.framebuffer_texture(fbo, tex).expect("attach");
    let err = gl.check_framebuffer_complete().unwrap_err();
    assert!(err.to_string().contains("no storage"));
}

#[test]
fn read_pixels_out_of_bounds() {
    let gl = Context::new(4, 4).expect("context");
    let err = gl.read_pixels(2, 2, 4, 4).unwrap_err();
    assert!(matches!(err, GlError::InvalidValue { .. }));
}

#[test]
fn loop_budget_traps_runaway_shaders() {
    let mut gl = Context::new(2, 2).expect("context");
    gl.set_exec_limits(ExecLimits {
        max_loop_iterations: 1000,
        max_call_depth: 8,
    });
    let fs = "precision highp float;\n\
              void main() {\n\
                float acc = 0.0;\n\
                for (float i = 0.0; i < 100000.0; i += 1.0) { acc += 1.0; }\n\
                gl_FragColor = vec4(acc);\n\
              }";
    let prog = gl.create_program(VS, fs).expect("program");
    gl.use_program(prog).expect("use");
    gl.set_attribute("a_pos", 2, &QUAD).expect("attrib");
    let err = gl.draw_arrays(PrimitiveMode::Triangles, 0, 6).unwrap_err();
    assert!(matches!(err, GlError::ShaderTrap(_)), "{err}");
}

#[test]
fn unwritten_gl_position_culls_silently() {
    // GL leaves gl_Position undefined when unwritten; this implementation
    // zero-initialises it, so w = 0 and every triangle is culled — the
    // draw "succeeds" and produces nothing, a classic GPGPU footgun the
    // stats make visible.
    let mut gl = Context::new(2, 2).expect("context");
    let vs = "attribute vec2 a_pos;\nvoid main() { float unused = a_pos.x; }";
    let prog = gl.create_program(vs, FS).expect("program");
    gl.use_program(prog).expect("use");
    gl.set_attribute("a_pos", 2, &QUAD).expect("attrib");
    let stats = gl
        .draw_arrays(PrimitiveMode::Triangles, 0, 6)
        .expect("draw");
    assert_eq!(stats.triangles_in, 2);
    assert_eq!(stats.triangles_rasterized, 0);
    assert_eq!(stats.fragments_shaded, 0);
}

#[test]
fn uniform_errors() {
    let mut gl = Context::new(2, 2).expect("context");
    let fs = "precision highp float;\nuniform float u_gain;\n\
              void main() { gl_FragColor = vec4(u_gain); }";
    let prog = gl.create_program(VS, fs).expect("program");
    gl.use_program(prog).expect("use");
    // Unknown name.
    let err = gl
        .set_uniform("u_nope", gpes::glsl::Value::Float(1.0))
        .unwrap_err();
    assert!(matches!(err, GlError::InvalidOperation { .. }));
    // Type mismatch.
    let err = gl
        .set_uniform("u_gain", gpes::glsl::Value::Vec2([0.0, 1.0]))
        .unwrap_err();
    assert!(matches!(err, GlError::InvalidOperation { .. }));
}

#[test]
fn specials_flushed_when_configured() {
    // FloatSpecials::Flush drops the §IV-E special-value branches: the
    // exponent-255 pattern reconstructs as (1+m)·2¹²⁸, which saturates to
    // ±∞ in fp32 — so NaN payloads silently become infinities (the naive
    // shader behaviour), while Preserve keeps them NaN.
    let v = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1.5];
    for (specials, nan_stays_nan) in [
        (FloatSpecials::Preserve, true),
        (FloatSpecials::Flush, false),
    ] {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        cc.set_float_specials(specials);
        let arr = cc.upload(&v).expect("upload");
        let k = Kernel::builder("id")
            .input("x", &arr)
            .output(ScalarType::F32, v.len())
            .body("return fetch_x(idx);")
            .build(&mut cc)
            .expect("build");
        let out = cc.run_f32(&k).expect("run");
        assert_eq!(
            out[0].is_nan(),
            nan_stays_nan,
            "{specials:?}: NaN came back as {}",
            out[0]
        );
        if specials == FloatSpecials::Preserve {
            assert_eq!(out[1], f32::INFINITY);
            assert_eq!(out[2], f32::NEG_INFINITY);
        } else {
            // Naive shader code packs ∞ through log2/exp2 arithmetic that
            // saturates: the value (and even its sign) is implementation
            // garbage. The only guarantee is that finite data is safe.
            assert!(!out[1].is_nan());
        }
        assert_eq!(out[3], 1.5, "{specials:?}: finite values must be exact");
    }
}

#[test]
fn scissor_confines_writes() {
    let mut gl = Context::new(4, 4).expect("context");
    let prog = gl.create_program(VS, FS).expect("program");
    gl.use_program(prog).expect("use");
    gl.set_attribute("a_pos", 2, &QUAD).expect("attrib");
    gl.set_scissor(Some((1, 1, 2, 2)));
    let stats = gl
        .draw_arrays(PrimitiveMode::Triangles, 0, 6)
        .expect("draw");
    assert_eq!(stats.pixels_written, 4);
    let px = gl.read_pixels(0, 0, 4, 4).expect("read");
    let at = |x: usize, y: usize| px[(y * 4 + x) * 4];
    assert_eq!(at(0, 0), 0);
    assert_eq!(at(1, 1), 255);
    assert_eq!(at(2, 2), 255);
    assert_eq!(at(3, 3), 0);
}

#[test]
fn compute_context_surfaces_shader_errors_with_source_context() {
    let mut cc = ComputeContext::new(8, 8).expect("context");
    let x = cc.upload(&[1.0f32]).expect("x");
    // A type error inside the body.
    let err = Kernel::builder("broken")
        .input("x", &x)
        .output(ScalarType::F32, 1)
        .body("return fetch_x(idx) + true;")
        .build(&mut cc)
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("check") || msg.contains("type") || msg.contains("operand"),
        "{msg}"
    );
}

#[test]
fn preprocessor_error_directive_reaches_the_driver_log() {
    let mut gl = Context::new(2, 2).expect("context");
    let fs = "precision highp float;\n#ifndef HAVE_FEATURE\n#error feature missing\n#endif\n\
              void main() { gl_FragColor = vec4(1.0); }";
    let err = gl.create_program(VS, fs).unwrap_err();
    assert!(err.to_string().contains("feature missing"), "{err}");
}

// ---- injected driver faults (FaultPlan) ----------------------------------
//
// Engine-level contracts for the deterministic fault layer: every
// injected failure surfaces as the right typed error on the job handle
// (or is healed by the retry policy), and a lost context is rebuilt with
// residents transparently re-uploaded. These run under whichever
// `GPES_TEST_DISPATCH` leg CI selects — fault decisions are per-worker
// and independent of the rasteriser dispatch.

use gpes::core::CachePolicy;
use std::sync::Arc;

fn saxpy(n: usize) -> Arc<KernelSpec> {
    Arc::new(
        KernelSpec::new("faults_saxpy")
            .input("x")
            .input("y")
            .uniform_f32("alpha", 2.0)
            .output(n)
            .body("return alpha * fetch_x(idx) + fetch_y(idx);"),
    )
}

fn ramp(n: usize, scale: f32) -> Vec<f32> {
    (0..n).map(|i| (i as f32 - 7.0) * scale).collect()
}

#[test]
fn fault_plan_same_seed_same_injection_sequence() {
    // Determinism end to end: two contexts driven through the identical
    // operation sequence under same-seed plans fail at identical points.
    let drive = || -> (Vec<bool>, u64) {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        cc.install_fault_plan(FaultPlan::new(77).rate_all(0.25));
        let mut outcomes = Vec::new();
        for i in 0..200 {
            match cc.upload(&[i as f32, 1.0, 2.0, 3.0]) {
                Ok(array) => {
                    outcomes.push(true);
                    cc.recycle_array(array);
                }
                Err(_) => outcomes.push(false),
            }
        }
        (outcomes, cc.faults_injected())
    };
    let (first, injected_first) = drive();
    let (second, injected_second) = drive();
    assert_eq!(first, second, "same seed must fail at the same operations");
    assert_eq!(injected_first, injected_second);
    assert!(
        injected_first > 0 && first.iter().any(|ok| *ok),
        "a 25% rate over 200 uploads must both inject and pass"
    );
}

#[test]
fn context_loss_poisons_every_live_handle() {
    let mut gl = Context::new(4, 4).expect("context");
    let prog = gl.create_program(VS, FS).expect("program before loss");
    gl.use_program(prog).expect("use before loss");
    // Lose the context on the very next faultable operation.
    gl.install_fault_plan(FaultPlan::new(3).lose_context_after(0));
    let err = gl.read_pixels(0, 0, 1, 1).unwrap_err();
    assert!(matches!(err, GlError::ContextLost), "{err}");
    assert!(gl.is_lost());
    // Every handle into the lost context is dead, exactly like
    // EGL_CONTEXT_LOST — even ones created before the loss.
    let err = gl.use_program(prog).unwrap_err();
    assert!(matches!(err, GlError::ContextLost), "{err}");
    let tex = gl.create_texture();
    let err = gl
        .tex_image_2d(tex, TexFormat::Rgba8, 1, 1, &[0; 4])
        .unwrap_err();
    assert!(matches!(err, GlError::ContextLost), "{err}");
}

#[test]
fn every_fault_site_surfaces_as_typed_error_on_the_handle() {
    let n = 16;
    let spec = saxpy(n);
    for site in FaultSite::ALL {
        // Program links bypass the context under the shared cache (they
        // happen inside the cache, once per process) — injecting at that
        // site needs the per-context policy, where workers link locally.
        let policy = match site {
            FaultSite::ProgramLink => CachePolicy::PerContext,
            _ => CachePolicy::Shared,
        };
        let engine = Engine::builder()
            .workers(1)
            .cache_policy(policy)
            .fault_plan(FaultPlan::new(1).fail_next(site, u64::MAX))
            .retry_policy(RetryPolicy::none())
            .build()
            .expect("engine");
        let job = Job::new(&spec).data(ramp(n, 1.0)).data(ramp(n, 0.5));
        let err = engine.submit(job).expect("admitted").wait().unwrap_err();
        assert!(
            err.is_transient(),
            "{site:?}: {err} must classify transient"
        );
        match &err {
            ComputeError::Gl(GlError::ResourceExhausted { message }) => assert!(
                message.contains(site.label()),
                "{site:?}: message `{message}` names the wrong site"
            ),
            other => panic!("{site:?}: expected ResourceExhausted, got {other:?}"),
        }
        let snap = engine.snapshot();
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.failed, 1);
        assert_eq!(
            snap.retried, 0,
            "{site:?}: RetryPolicy::none must not retry"
        );
        assert!(snap.faults_injected >= 1);
        assert!(snap.counters_balanced());
        engine.shutdown();
    }
}

#[test]
fn transient_fault_is_retried_to_success() {
    let n = 16;
    let spec = saxpy(n);
    let x = ramp(n, 1.0);
    let y = ramp(n, 0.5);
    let expected: Vec<f32> = x.iter().zip(&y).map(|(a, b)| 2.0 * a + b).collect();
    let engine = Engine::builder()
        .workers(1)
        // Exactly one injected failure: the first readback fails, the
        // requeued retry succeeds.
        .fault_plan(FaultPlan::new(5).fail_next(FaultSite::Readback, 1))
        .build()
        .expect("engine");
    let job = Job::new(&spec).data(x).data(y);
    let out = engine
        .submit(job)
        .expect("admitted")
        .wait()
        .expect("healed");
    assert_eq!(out, expected, "retried job must produce the exact answer");
    let snap = engine.snapshot();
    assert_eq!(snap.submitted, 1, "a retry is not a new submission");
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.failed, 0);
    assert_eq!(snap.retried, 1);
    assert_eq!(snap.faults_injected, 1);
    assert!(snap.counters_balanced());
    engine.shutdown();
}

#[test]
fn exhausted_retries_surface_the_transient_error() {
    let n = 16;
    let spec = saxpy(n);
    let engine = Engine::builder()
        .workers(1)
        .fault_plan(FaultPlan::new(5).fail_next(FaultSite::Readback, u64::MAX))
        .retry_policy(RetryPolicy {
            max_attempts: 3,
            backoff: std::time::Duration::ZERO,
        })
        .build()
        .expect("engine");
    let job = Job::new(&spec).data(ramp(n, 1.0)).data(ramp(n, 0.5));
    let err = engine.submit(job).expect("admitted").wait().unwrap_err();
    assert!(err.is_transient(), "{err}");
    let snap = engine.snapshot();
    assert_eq!(snap.retried, 2, "3 attempts = first + 2 retries");
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.failed, 1);
    assert!(snap.counters_balanced());
    engine.shutdown();
}

#[test]
fn per_job_retry_policy_overrides_the_engine_default() {
    let n = 16;
    let spec = saxpy(n);
    let engine = Engine::builder()
        .workers(1)
        .fault_plan(FaultPlan::new(5).fail_next(FaultSite::Readback, u64::MAX))
        .build()
        .expect("engine");
    // The engine default would retry; this job opts out.
    let job = Job::new(&spec)
        .data(ramp(n, 1.0))
        .data(ramp(n, 0.5))
        .retry_policy(RetryPolicy::none());
    let err = engine.submit(job).expect("admitted").wait().unwrap_err();
    assert!(err.is_transient(), "{err}");
    assert_eq!(engine.snapshot().retried, 0);
    engine.shutdown();
}

#[test]
fn context_loss_rebuilds_worker_and_reuploads_residents() {
    let n = 16;
    let spec = saxpy(n);
    let x = ramp(n, 1.0);
    let y = ramp(n, 0.5);
    let resident = ResidentInput::new(y.clone());
    let expected: Vec<f32> = x.iter().zip(&y).map(|(a, b)| 2.0 * a + b).collect();
    let engine = Engine::builder()
        .workers(1)
        // One-shot loss a few operations in: it lands mid-stream while
        // jobs (and the resident texture) are in active use.
        .fault_plan(FaultPlan::new(9).lose_context_after(7))
        .build()
        .expect("engine");
    for wave in 0..6 {
        let job = Job::new(&spec).data(x.clone()).resident(&resident);
        let out = engine
            .submit(job)
            .expect("admitted")
            .wait()
            .unwrap_or_else(|e| panic!("wave {wave}: {e}"));
        assert_eq!(out, expected, "wave {wave}: healed output must be exact");
    }
    let snap = engine.snapshot();
    assert_eq!(snap.recovered_contexts, 1, "one-shot loss = one rebuild");
    assert!(snap.retried >= 1, "the in-flight job was replayed");
    assert_eq!(snap.completed, 6);
    assert_eq!(snap.failed, 0);
    assert!(
        snap.residents.uploads >= 2,
        "resident must re-upload after the rebuild (uploads = {})",
        snap.residents.uploads
    );
    assert!(snap.counters_balanced());
    engine.shutdown();
}

#[test]
fn panic_rebuild_reuploads_residents() {
    // Satellite regression: the worker-panic rebuild path drops resident
    // textures and the per-worker pipeline cache with the dead context,
    // and the next job using the resident transparently re-uploads it.
    let n = 16;
    let spec = saxpy(n);
    let x = ramp(n, 1.0);
    let y = ramp(n, 0.5);
    let resident = ResidentInput::new(y.clone());
    let expected: Vec<f32> = x.iter().zip(&y).map(|(a, b)| 2.0 * a + b).collect();
    let engine = Engine::builder().workers(1).build().expect("engine");
    let before = engine
        .submit(Job::new(&spec).data(x.clone()).resident(&resident))
        .expect("admitted")
        .wait()
        .expect("job before panic");
    assert_eq!(before, expected);
    assert_eq!(engine.snapshot().residents.uploads, 1);

    let bomb = Arc::new(
        KernelSpec::new("bomb")
            .input("x")
            .uniform_f32("boom", 1.0)
            .output(n)
            .body("return fetch_x(idx) * boom;"),
    );
    let panicking = Arc::new(
        PipelineSpec::builder("panics")
            .source_len("x", n)
            .pass(
                PassSpec::new(&bomb)
                    .read("x", "x")
                    .write_len("x", n)
                    .uniform_per_iter("boom", |_| panic!("injected worker panic")),
            )
            .iterations(2)
            .build()
            .expect("spec"),
    );
    let err = engine
        .submit_pipeline(PipelineJob::new(&panicking).source(x.clone()).read("x"))
        .expect("admitted")
        .wait()
        .unwrap_err();
    assert!(matches!(err, ComputeError::EngineInternal { .. }), "{err}");

    let after = engine
        .submit(Job::new(&spec).data(x).resident(&resident))
        .expect("admitted")
        .wait()
        .expect("job after panic rebuild");
    assert_eq!(after, expected, "post-rebuild output must be exact");
    let snap = engine.snapshot();
    assert_eq!(snap.recovered_contexts, 1, "panic = one context rebuild");
    assert_eq!(
        snap.residents.uploads, 2,
        "resident must re-upload exactly once after the rebuild"
    );
    assert_eq!(snap.failed, 1);
    assert!(snap.counters_balanced());
    engine.shutdown();
}

#[test]
fn batch_and_pipeline_jobs_heal_transient_faults_too() {
    let n = 16;
    let gain = Arc::new(
        KernelSpec::new("faults_gain")
            .input("x")
            .uniform_f32("gain", 3.0)
            .output(n)
            .body("return fetch_x(idx) * gain;"),
    );
    let x = ramp(n, 1.0);
    let expected: Vec<f32> = x.iter().map(|a| a * 3.0).collect();
    let engine = Engine::builder()
        .workers(1)
        .fault_plan(FaultPlan::new(13).fail_next(FaultSite::Readback, 1))
        .build()
        .expect("engine");
    let mut submission = Submission::new();
    let step = submission.step(
        &gain,
        vec![gpes::core::serve::StepInput::Data(Arc::new(x.clone()))],
        vec![],
    );
    submission.read(step);
    let result = engine
        .submit_batch(submission)
        .expect("admitted")
        .wait()
        .expect("healed batch");
    assert_eq!(result.output(step).expect("read"), &expected[..]);
    let snap = engine.snapshot();
    assert_eq!(snap.retried, 1);
    assert_eq!(snap.failed, 0);
    assert!(snap.counters_balanced());
    engine.shutdown();
}
