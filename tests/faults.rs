//! Failure injection across the stack: every error path a real GLES2
//! app can hit must surface as a typed error, never a wrong answer or a
//! panic.

use gpes::gles2::{Context, GlError, PrimitiveMode, TexFormat};
use gpes::glsl::exec::ExecLimits;
use gpes::prelude::*;

const VS: &str = "attribute vec2 a_pos;\nvoid main() { gl_Position = vec4(a_pos, 0.0, 1.0); }";
const FS: &str = "precision highp float;\nvoid main() { gl_FragColor = vec4(1.0); }";
const QUAD: [f32; 12] = [
    -1.0, -1.0, 1.0, -1.0, 1.0, 1.0, //
    -1.0, -1.0, 1.0, 1.0, -1.0, 1.0,
];

#[test]
fn draw_without_program_or_attributes() {
    let mut gl = Context::new(4, 4).expect("context");
    let err = gl.draw_arrays(PrimitiveMode::Triangles, 0, 3).unwrap_err();
    assert!(matches!(err, GlError::InvalidOperation { .. }));

    let prog = gl.create_program(VS, FS).expect("program");
    gl.use_program(prog).expect("use");
    // No a_pos array bound.
    let err = gl.draw_arrays(PrimitiveMode::Triangles, 0, 3).unwrap_err();
    assert!(err.to_string().contains("a_pos"), "{err}");
}

#[test]
fn bad_draw_counts() {
    let mut gl = Context::new(4, 4).expect("context");
    let prog = gl.create_program(VS, FS).expect("program");
    gl.use_program(prog).expect("use");
    gl.set_attribute("a_pos", 2, &QUAD).expect("attrib");
    let err = gl.draw_arrays(PrimitiveMode::Triangles, 0, 4).unwrap_err();
    assert!(err.to_string().contains("multiple of 3"));
    let err = gl
        .draw_arrays(PrimitiveMode::TriangleStrip, 0, 2)
        .unwrap_err();
    assert!(matches!(err, GlError::InvalidValue { .. }));
    // Attribute array shorter than the draw range.
    let err = gl.draw_arrays(PrimitiveMode::Triangles, 3, 6).unwrap_err();
    assert!(err.to_string().contains("too short"));
}

#[test]
fn deleted_and_stale_objects() {
    let mut gl = Context::new(4, 4).expect("context");
    let tex = gl.create_texture();
    gl.delete_texture(tex);
    let err = gl
        .tex_image_2d(tex, TexFormat::Rgba8, 1, 1, &[0, 0, 0, 0])
        .unwrap_err();
    assert!(matches!(
        err,
        GlError::NoSuchObject {
            kind: "texture",
            ..
        }
    ));
    let fb = gl.create_framebuffer();
    let err = gl.framebuffer_texture(fb, tex).unwrap_err();
    assert!(matches!(err, GlError::NoSuchObject { .. }));
}

#[test]
fn incomplete_fbo_blocks_draws_and_reads() {
    let mut gl = Context::new(4, 4).expect("context");
    let prog = gl.create_program(VS, FS).expect("program");
    gl.use_program(prog).expect("use");
    gl.set_attribute("a_pos", 2, &QUAD).expect("attrib");
    let fbo = gl.create_framebuffer();
    gl.bind_framebuffer(Some(fbo)).expect("bind");
    let err = gl.draw_arrays(PrimitiveMode::Triangles, 0, 6).unwrap_err();
    assert!(matches!(err, GlError::InvalidFramebufferOperation { .. }));
    let err = gl.read_pixels(0, 0, 1, 1).unwrap_err();
    assert!(matches!(err, GlError::InvalidFramebufferOperation { .. }));
    // Attaching storage-less texture is still incomplete.
    let tex = gl.create_texture();
    gl.framebuffer_texture(fbo, tex).expect("attach");
    let err = gl.check_framebuffer_complete().unwrap_err();
    assert!(err.to_string().contains("no storage"));
}

#[test]
fn read_pixels_out_of_bounds() {
    let gl = Context::new(4, 4).expect("context");
    let err = gl.read_pixels(2, 2, 4, 4).unwrap_err();
    assert!(matches!(err, GlError::InvalidValue { .. }));
}

#[test]
fn loop_budget_traps_runaway_shaders() {
    let mut gl = Context::new(2, 2).expect("context");
    gl.set_exec_limits(ExecLimits {
        max_loop_iterations: 1000,
        max_call_depth: 8,
    });
    let fs = "precision highp float;\n\
              void main() {\n\
                float acc = 0.0;\n\
                for (float i = 0.0; i < 100000.0; i += 1.0) { acc += 1.0; }\n\
                gl_FragColor = vec4(acc);\n\
              }";
    let prog = gl.create_program(VS, fs).expect("program");
    gl.use_program(prog).expect("use");
    gl.set_attribute("a_pos", 2, &QUAD).expect("attrib");
    let err = gl.draw_arrays(PrimitiveMode::Triangles, 0, 6).unwrap_err();
    assert!(matches!(err, GlError::ShaderTrap(_)), "{err}");
}

#[test]
fn unwritten_gl_position_culls_silently() {
    // GL leaves gl_Position undefined when unwritten; this implementation
    // zero-initialises it, so w = 0 and every triangle is culled — the
    // draw "succeeds" and produces nothing, a classic GPGPU footgun the
    // stats make visible.
    let mut gl = Context::new(2, 2).expect("context");
    let vs = "attribute vec2 a_pos;\nvoid main() { float unused = a_pos.x; }";
    let prog = gl.create_program(vs, FS).expect("program");
    gl.use_program(prog).expect("use");
    gl.set_attribute("a_pos", 2, &QUAD).expect("attrib");
    let stats = gl
        .draw_arrays(PrimitiveMode::Triangles, 0, 6)
        .expect("draw");
    assert_eq!(stats.triangles_in, 2);
    assert_eq!(stats.triangles_rasterized, 0);
    assert_eq!(stats.fragments_shaded, 0);
}

#[test]
fn uniform_errors() {
    let mut gl = Context::new(2, 2).expect("context");
    let fs = "precision highp float;\nuniform float u_gain;\n\
              void main() { gl_FragColor = vec4(u_gain); }";
    let prog = gl.create_program(VS, fs).expect("program");
    gl.use_program(prog).expect("use");
    // Unknown name.
    let err = gl
        .set_uniform("u_nope", gpes::glsl::Value::Float(1.0))
        .unwrap_err();
    assert!(matches!(err, GlError::InvalidOperation { .. }));
    // Type mismatch.
    let err = gl
        .set_uniform("u_gain", gpes::glsl::Value::Vec2([0.0, 1.0]))
        .unwrap_err();
    assert!(matches!(err, GlError::InvalidOperation { .. }));
}

#[test]
fn specials_flushed_when_configured() {
    // FloatSpecials::Flush drops the §IV-E special-value branches: the
    // exponent-255 pattern reconstructs as (1+m)·2¹²⁸, which saturates to
    // ±∞ in fp32 — so NaN payloads silently become infinities (the naive
    // shader behaviour), while Preserve keeps them NaN.
    let v = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1.5];
    for (specials, nan_stays_nan) in [
        (FloatSpecials::Preserve, true),
        (FloatSpecials::Flush, false),
    ] {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        cc.set_float_specials(specials);
        let arr = cc.upload(&v).expect("upload");
        let k = Kernel::builder("id")
            .input("x", &arr)
            .output(ScalarType::F32, v.len())
            .body("return fetch_x(idx);")
            .build(&mut cc)
            .expect("build");
        let out = cc.run_f32(&k).expect("run");
        assert_eq!(
            out[0].is_nan(),
            nan_stays_nan,
            "{specials:?}: NaN came back as {}",
            out[0]
        );
        if specials == FloatSpecials::Preserve {
            assert_eq!(out[1], f32::INFINITY);
            assert_eq!(out[2], f32::NEG_INFINITY);
        } else {
            // Naive shader code packs ∞ through log2/exp2 arithmetic that
            // saturates: the value (and even its sign) is implementation
            // garbage. The only guarantee is that finite data is safe.
            assert!(!out[1].is_nan());
        }
        assert_eq!(out[3], 1.5, "{specials:?}: finite values must be exact");
    }
}

#[test]
fn scissor_confines_writes() {
    let mut gl = Context::new(4, 4).expect("context");
    let prog = gl.create_program(VS, FS).expect("program");
    gl.use_program(prog).expect("use");
    gl.set_attribute("a_pos", 2, &QUAD).expect("attrib");
    gl.set_scissor(Some((1, 1, 2, 2)));
    let stats = gl
        .draw_arrays(PrimitiveMode::Triangles, 0, 6)
        .expect("draw");
    assert_eq!(stats.pixels_written, 4);
    let px = gl.read_pixels(0, 0, 4, 4).expect("read");
    let at = |x: usize, y: usize| px[(y * 4 + x) * 4];
    assert_eq!(at(0, 0), 0);
    assert_eq!(at(1, 1), 255);
    assert_eq!(at(2, 2), 255);
    assert_eq!(at(3, 3), 0);
}

#[test]
fn compute_context_surfaces_shader_errors_with_source_context() {
    let mut cc = ComputeContext::new(8, 8).expect("context");
    let x = cc.upload(&[1.0f32]).expect("x");
    // A type error inside the body.
    let err = Kernel::builder("broken")
        .input("x", &x)
        .output(ScalarType::F32, 1)
        .body("return fetch_x(idx) + true;")
        .build(&mut cc)
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("check") || msg.contains("type") || msg.contains("operand"),
        "{msg}"
    );
}

#[test]
fn preprocessor_error_directive_reaches_the_driver_log() {
    let mut gl = Context::new(2, 2).expect("context");
    let fs = "precision highp float;\n#ifndef HAVE_FEATURE\n#error feature missing\n#endif\n\
              void main() { gl_FragColor = vec4(1.0); }";
    let err = gl.create_program(VS, fs).unwrap_err();
    assert!(err.to_string().contains("feature missing"), "{err}");
}
