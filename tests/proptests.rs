//! Property-based tests over the full stack: codec round trips on whole
//! value domains, addressing bijectivity, and fill-rule coverage.

use gpes::core::addressing::ArrayLayout;
use gpes::core::codec::{
    float32, sbyte, sint, sshort, strzodka16, ubyte, uint, ushort, FloatSpecials, PackBias,
};
use gpes::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// §IV-E: the CPU-side rotation is a bijection on all 2³² patterns.
    #[test]
    fn float_rotation_bijective(bits: u32) {
        prop_assert_eq!(float32::unrotate_bits(float32::rotate_bits(bits)), bits);
    }

    /// §IV-E: encode→shader-unpack→shader-pack→decode is bit-exact for
    /// every float (including subnormals and specials) under the exact
    /// model.
    #[test]
    fn float_full_cycle_bit_exact(bits: u32) {
        let v = f32::from_bits(bits);
        let up = float32::mirror_unpack(float32::encode(v), FloatSpecials::Preserve);
        let out = float32::mirror_pack(up, PackBias::default(), FloatSpecials::Preserve);
        let back = float32::decode(out);
        if v.is_nan() {
            prop_assert!(back.is_nan());
        } else {
            prop_assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    /// §IV-C/D: integers round-trip exactly within ±2²⁴.
    #[test]
    fn int_cycle_exact_in_domain(v in -(1i32 << 24)..=(1i32 << 24)) {
        let up = sint::mirror_unpack(sint::encode(v));
        prop_assert_eq!(up, v as f32);
        let out = sint::mirror_pack(up, PackBias::default());
        prop_assert_eq!(sint::decode(out), v);
    }

    #[test]
    fn uint_cycle_exact_in_domain(v in 0u32..=(1u32 << 24)) {
        let up = uint::mirror_unpack(uint::encode(v));
        prop_assert_eq!(up, v as f32);
        let out = uint::mirror_pack(up, PackBias::default());
        prop_assert_eq!(uint::decode(out), v);
    }

    /// §IV-A/B: bytes round-trip under every bias mode.
    #[test]
    fn byte_cycles_all_biases(v: u8, signed: i8) {
        for bias in [PackBias::QuarterTexel, PackBias::HalfTexel, PackBias::PaperDelta] {
            prop_assert_eq!(ubyte::mirror_pack(ubyte::mirror_unpack(v), bias), v);
            let up = sbyte::mirror_unpack(sbyte::encode(signed));
            prop_assert_eq!(sbyte::decode(sbyte::mirror_pack(up, bias)), signed);
        }
    }

    /// Shorts (the §IV recipe on two bytes): exact on the whole domain,
    /// every bias mode.
    #[test]
    fn short_cycles_all_biases(u: u16, s: i16) {
        for bias in [PackBias::QuarterTexel, PackBias::HalfTexel, PackBias::PaperDelta] {
            let up = ushort::mirror_unpack(ushort::encode(u));
            prop_assert_eq!(up, u as f32);
            prop_assert_eq!(ushort::decode(ushort::mirror_pack(up, bias)), u);
            let sp = sshort::mirror_unpack(sshort::encode(s));
            prop_assert_eq!(sp, s as f32);
            prop_assert_eq!(sshort::decode(sshort::mirror_pack(sp, bias)), s);
        }
    }

    /// The Strzodka'02 baseline's virtual ops agree with wrapping u16
    /// arithmetic for any operands.
    #[test]
    fn strzodka_virtual_ops_match_wrapping_u16(a: u16, b: u16, k in 0u16..=255) {
        let ha = strzodka16::mirror_unpack(strzodka16::encode_u16(a));
        let hb = strzodka16::mirror_unpack(strzodka16::encode_u16(b));
        let dec = |h| strzodka16::decode_u16(strzodka16::mirror_pack(h, PackBias::default()));
        prop_assert_eq!(dec(strzodka16::mirror_add(ha, hb)), a.wrapping_add(b));
        prop_assert_eq!(dec(strzodka16::mirror_sub(ha, hb)), a.wrapping_sub(b));
        prop_assert_eq!(dec(strzodka16::mirror_scale(ha, k as f32)), a.wrapping_mul(k));
        prop_assert_eq!(strzodka16::mirror_lt(ha, hb), a < b);
        // Signed excess-32768 host format is a bijection.
        let s = (a as i32 - 32768) as i16;
        prop_assert_eq!(strzodka16::decode_i16(strzodka16::encode_i16(s)), s);
    }

    /// fp16 narrowing (the §II.5 extension path): every finite value in
    /// half range round-trips within half a 10-bit ulp, and values
    /// already representable in fp16 are exact.
    #[test]
    fn f16_round_trip_error_bound(v in -60000.0f32..60000.0) {
        let rt = gpes::gles2::half::round_trip_f16(v);
        let scale = v.abs().max(2.0f32.powi(-14)); // denormal cutoff
        prop_assert!((rt - v).abs() <= scale * 2.0f32.powi(-11),
            "{v} -> {rt}");
        // Idempotence: a second trip changes nothing.
        prop_assert_eq!(gpes::gles2::half::round_trip_f16(rt).to_bits(), rt.to_bits());
    }

    /// The preprocessor's #if evaluator agrees with Rust on random
    /// integer comparisons and arithmetic.
    #[test]
    fn preprocessor_if_matches_rust(a in -100i64..100, b in -100i64..100, c in 1i64..50) {
        let truth = (a + b * c > a * 2) != (a - c <= b);
        let src = format!(
            "#if (({a}) + ({b}) * ({c}) > ({a}) * 2 && !(({a}) - ({c}) <= ({b}))) || \
                 (!(({a}) + ({b}) * ({c}) > ({a}) * 2) && (({a}) - ({c}) <= ({b})))\n\
             float yes;\n#endif\n"
        );
        let out = gpes::glsl::preprocess(&src).expect("preprocess");
        prop_assert_eq!(out.source.contains("float yes;"), truth);
    }

    /// Workarounds 3/4: the 1-D↔2-D address mapping is a bijection and
    /// texel centres stay strictly inside (0,1)².
    #[test]
    fn addressing_bijective(len in 1usize..100_000) {
        let layout = ArrayLayout::for_len(len, 4096).expect("layout");
        let probe = [0, len / 3, len / 2, len.saturating_sub(1)];
        for &i in &probe {
            let (x, y) = layout.coord_of(i);
            prop_assert_eq!(layout.index_of(x, y), i);
            let (u, v) = layout.normalized_center(i);
            prop_assert!(u > 0.0 && u < 1.0 && v > 0.0 && v < 1.0);
        }
    }
}

proptest! {
    // Full-pipeline properties are costlier: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random fp32 vector survives upload → identity kernel → read.
    #[test]
    fn gpu_identity_is_lossless(values in proptest::collection::vec(
        proptest::num::f32::NORMAL | proptest::num::f32::SUBNORMAL | proptest::num::f32::ZERO,
        1..200,
    )) {
        let mut cc = ComputeContext::new(32, 32).expect("context");
        let arr = cc.upload(&values).expect("upload");
        let k = Kernel::builder("id")
            .input("x", &arr)
            .output(ScalarType::F32, values.len())
            .body("return fetch_x(idx);")
            .build(&mut cc)
            .expect("build");
        let out = cc.run_f32(&k).expect("run");
        for (a, b) in values.iter().zip(&out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The two-triangle quad shades every pixel exactly once for any
    /// viewport size (the fill-rule guarantee behind workaround #2).
    #[test]
    fn quad_coverage_is_exact(w in 1u32..48, h in 1u32..48) {
        let mut gl = gpes::gles2::Context::new(w, h).expect("context");
        let prog = gl
            .create_program(
                "attribute vec2 a_pos; void main() { gl_Position = vec4(a_pos, 0.0, 1.0); }",
                "precision highp float; void main() { gl_FragColor = vec4(1.0); }",
            )
            .expect("program");
        gl.use_program(prog).expect("use");
        gl.viewport(0, 0, w as i32, h as i32);
        gl.set_attribute(
            "a_pos",
            2,
            &[-1.0, -1.0, 1.0, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, 1.0],
        )
        .expect("attrib");
        let stats = gl
            .draw_arrays(gpes::gles2::PrimitiveMode::Triangles, 0, 6)
            .expect("draw");
        prop_assert_eq!(stats.fragments_shaded, (w * h) as u64);
        prop_assert_eq!(stats.pixels_written, (w * h) as u64);
    }

    /// Integer kernels agree with wrapped CPU arithmetic across the
    /// exact domain, whatever the inputs.
    #[test]
    fn gpu_int_add_matches_cpu(
        a in proptest::collection::vec(-(1i32 << 22)..(1i32 << 22), 1..100),
    ) {
        let b: Vec<i32> = a.iter().map(|&x| x / 2 + 7).collect();
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let ga = cc.upload(&a).expect("a");
        let gb = cc.upload(&b).expect("b");
        let k = gpes::kernels::sum::build_i32(&mut cc, &ga, &gb).expect("kernel");
        let out: Vec<i32> = cc.run_and_read(&k).expect("run");
        let expect: Vec<i32> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        prop_assert_eq!(out, expect);
    }

    /// Vertex-stage compute is lossless for arbitrary f32 data — the
    /// §III-1 path preserves the same codec guarantees as the fragment
    /// path.
    #[test]
    fn vertex_compute_identity_is_lossless(values in proptest::collection::vec(
        proptest::num::f32::NORMAL | proptest::num::f32::ZERO,
        1..120,
    )) {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let vk = gpes::core::vertex_compute::VertexKernel::builder("id_v")
            .input("x", &values)
            .output(ScalarType::F32, values.len())
            .body("return x;")
            .build(&mut cc)
            .expect("build");
        let out: Vec<f32> = vk.run_and_read(&mut cc).expect("run");
        for (a, b) in values.iter().zip(&out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Any u16 vector survives the LUMINANCE_ALPHA upload → kernel →
    /// RGBA8 framebuffer cycle exactly.
    #[test]
    fn gpu_u16_identity_is_lossless(values in proptest::collection::vec(any::<u16>(), 1..200)) {
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let arr = cc.upload(&values).expect("upload");
        let k = Kernel::builder("id16")
            .input("x", &arr)
            .output(ScalarType::U16, values.len())
            .body("return fetch_x(idx);")
            .build(&mut cc)
            .expect("build");
        let out: Vec<u16> = cc.run_and_read(&k).expect("run");
        prop_assert_eq!(out, values);
    }

    /// Point rasterisation scatters every work item to exactly one
    /// pixel, for any output size.
    #[test]
    fn points_cover_each_item_once(n in 1usize..200) {
        let zeros = vec![0.0f32; n];
        let mut cc = ComputeContext::new(16, 16).expect("context");
        let vk = gpes::core::vertex_compute::VertexKernel::builder("ones")
            .input("z", &zeros)
            .output(ScalarType::F32, n)
            .body("return z + 1.0;")
            .build(&mut cc)
            .expect("build");
        let out: Vec<f32> = vk.run_and_read(&mut cc).expect("run");
        prop_assert!(out.iter().all(|&v| v == 1.0));
        let log = cc.take_pass_log();
        prop_assert_eq!(log[0].stats.fragments_shaded, n as u64);
        prop_assert_eq!(log[0].stats.pixels_written, n as u64);
    }
}
